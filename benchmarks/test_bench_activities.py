"""E11 — §6's activity perspective: dataflow throughput.

"Database operations are viewed as extended activities that produce,
consume and transform flows of data." The benchmark measures the
activity engine's element throughput across pipeline depths and fan-out,
and verifies that clocked execution delivers elements in presentation
order regardless of topology.
"""

import pytest

from repro.core.elements import MediaElement
from repro.core.media_types import media_type_registry
from repro.core.streams import TimedStream
from repro.engine.activities import (
    ActivityGraph,
    Consumer,
    Producer,
    Transform,
    pipeline,
)


@pytest.fixture(scope="module")
def long_stream():
    video = media_type_registry.get("pal-video")
    return TimedStream.from_elements(
        video, [MediaElement(payload=i, size=100) for i in range(2_000)]
    )


def test_pipeline_throughput(report, benchmark, long_stream):
    tag = lambda e: MediaElement(payload=e.payload, size=e.size)

    def run(depth):
        consumer = pipeline(long_stream, *([tag] * depth))
        return consumer

    rows = []
    import time

    for depth in (0, 1, 3):
        begin = time.perf_counter()
        consumer = run(depth)
        elapsed = time.perf_counter() - begin
        assert consumer.count == 2_000
        rows.append((
            depth,
            f"{consumer.count / elapsed:,.0f} elem/s",
            f"{elapsed * 1000:.1f} ms",
        ))
    report.table(
        "activities",
        ("transform stages", "throughput", "wall time (2,000 elements)"),
        rows,
        title="§6 — activity dataflow throughput by pipeline depth",
    )

    benchmark(lambda: run(1))


def test_fan_out_consistency(benchmark, long_stream):
    def run():
        graph = ActivityGraph()
        producer = graph.add(Producer("src", long_stream))
        sinks = [graph.add(Consumer(f"sink{i}", keep_elements=False))
                 for i in range(3)]
        for sink in sinks:
            graph.connect(producer, sink)
        graph.run()
        return sinks

    sinks = benchmark.pedantic(run, iterations=1, rounds=1)
    assert all(s.count == 2_000 for s in sinks)


def test_filter_pipeline(benchmark, long_stream):
    keep_every_fifth = lambda e: e if e.payload % 5 == 0 else None

    consumer = benchmark.pedantic(
        lambda: pipeline(long_stream, keep_every_fifth),
        iterations=1, rounds=1,
    )
    assert consumer.count == 400
