"""E8 — buffer-pool and derivation-cache replay speedups.

Three workloads over the Figure-5 material:

* cold vs warm replay of the recorded interpretation through a
  buffer-pool-backed page store (the §3 BLOB path);
* VOD prefetch warming the pool before sessions arrive (the §5 serving
  path);
* repeated expansion of the Figure-5 edit graph through the
  cost-driven derivation cache (the §4.2 materialize-vs-expand
  decision).

Each workload reports cold/warm page reads, hit ratios and the
wall-clock speedup; everything lands in ``benchmarks/results/cache.txt``.
"""

import time

from repro.blob.blob import PagedBlob
from repro.blob.pages import MemoryPager, PageStore
from repro.cache import BufferPool, DerivationCache
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.edit import MediaEditor
from repro.engine import Recorder
from repro.engine.vod import VodServer
from repro.media import frames
from repro.media.objects import video_object
from repro.obs import Observability

POOL_PAGES = 4096
PAGE_SIZE = 4096


def record_paged(pool_pages=POOL_PAGES):
    """The Figure-5 shots recorded onto pooled, paged storage."""
    obs = Observability()
    pool = BufferPool(pool_pages)
    store = PageStore(MemoryPager(page_size=PAGE_SIZE), checksums=True,
                      buffer_pool=pool, obs=obs)
    shot1 = video_object(frames.scene(96, 72, 40, "orbit"), "shot1")
    shot2 = video_object(frames.scene(96, 72, 40, "cut"), "shot2")
    interpretation = Recorder(PagedBlob(store)).record(
        [shot1, shot2],
        encoders={
            "shot1": JpegLikeCodec(quality=40).encode,
            "shot2": JpegLikeCodec(quality=40).encode,
        },
        interpretation_name="tape1",
    )
    return interpretation, pool, obs, (shot1, shot2)


def timed_replay(interpretation, pager_reads):
    """(seconds, pager reads) for one full materialization pass."""
    before = pager_reads.total()
    start = time.perf_counter()
    for name in interpretation.names():
        interpretation.materialize(name)
    elapsed = time.perf_counter() - start
    return elapsed, pager_reads.total() - before


def test_cache_figure5_replay(report):
    """Warm replay of the recorded Figure-5 tape must re-read strictly
    fewer pages than the cold pass."""
    interpretation, pool, obs, _ = record_paged()
    pager_reads = obs.metrics.counter("blob.page.pager_reads")

    cold_seconds, cold_reads = timed_replay(interpretation, pager_reads)
    warm_seconds, warm_reads = timed_replay(interpretation, pager_reads)

    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    report.kv(
        "cache",
        [
            ("pool capacity (pages)", pool.capacity_pages),
            ("cold pager reads", cold_reads),
            ("warm pager reads", warm_reads),
            ("pool hit ratio", f"{pool.hit_ratio:.1%}"),
            ("cold replay seconds", f"{cold_seconds:.4f}"),
            ("warm replay seconds", f"{warm_seconds:.4f}"),
            ("replay speedup", f"{speedup:.2f}x"),
        ],
        title="Figure-5 tape replay through the buffer pool",
    )
    assert warm_reads < cold_reads
    assert pool.hits > 0


def test_cache_vod_prefetch(report):
    """Prefetch loads the pool; the second prefetch (a stand-in for the
    first paying session's reads) hits it."""
    interpretation, pool, obs, _ = record_paged()
    server = VodServer(bandwidth=40_000_000, obs=obs)
    server.publish("feature", interpretation)
    pager_reads = obs.metrics.counter("blob.page.pager_reads")

    before = pager_reads.total()
    warmed = server.prefetch("feature")
    cold_reads = pager_reads.total() - before

    before = pager_reads.total()
    server.prefetch("feature")
    warm_reads = pager_reads.total() - before

    report.kv(
        "cache",
        [
            ("bytes warmed per prefetch", warmed),
            ("cold prefetch pager reads", cold_reads),
            ("warm prefetch pager reads", warm_reads),
            ("pool hit ratio after prefetches", f"{pool.hit_ratio:.1%}"),
        ],
        title="VOD prefetch warming the buffer pool",
    )
    assert warm_reads < cold_reads
    assert obs.metrics.counter("vod.prefetches").total() == 2


def test_cache_derivation_expansion(report):
    """Re-materializing the Figure-5 edit graph is a cache hit: the
    expensive expansion runs once per budgeted cache, not once per use."""
    obs = Observability()
    cache = DerivationCache(budget_bytes=64 * 1024 * 1024, obs=obs)
    shot1 = video_object(frames.scene(96, 72, 40, "orbit"), "shot1")
    shot2 = video_object(frames.scene(96, 72, 40, "cut"), "shot2")
    editor = MediaEditor()
    cut1 = editor.cut(shot1, 0, 36, name="cut1")
    fade = editor.transition(shot1, shot2, 8, a_start=32, b_start=0,
                             name="fade")
    cut2 = editor.cut(shot2, 4, 40, name="cut2")
    final = editor.concat(cut1, fade, cut2, name="final").attach_cache(cache)

    start = time.perf_counter()
    expanded = final.materialize()
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    again = final.materialize()
    warm_seconds = time.perf_counter() - start

    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    report.kv(
        "cache",
        [
            ("expanded bytes", expanded.stream().total_size()),
            ("cache occupancy bytes", cache.occupancy_bytes),
            ("cold materialize seconds", f"{cold_seconds:.4f}"),
            ("warm materialize seconds", f"{warm_seconds:.4f}"),
            ("materialize speedup", f"{speedup:.2f}x"),
            ("derivation cache hit ratio", f"{cache.hit_ratio:.1%}"),
        ],
        title="Figure-5 edit graph through the derivation cache",
    )
    assert again is expanded
    assert cache.hits == 1
    assert cache.stats()["entries"] == 1
