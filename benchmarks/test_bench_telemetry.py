"""TELEMETRY — scrape overhead and dump determinism.

Serves the overloaded six-session workload twice per measurement —
once bare, once with the clock-driven telemetry pipeline attached
(quarter-second scrape cadence, default burn-rate rules) — and asserts
the scrape-on serve stays under 2x the bare serve's wall time. Also
checks the byte-identity contract: two same-seed scrape-on runs must
produce identical telemetry-store dumps and alert timelines.

Wall-clock reads are confined to this benchmark (the lint gate covers
``src/repro`` only); everything inside the serve runs on simulated
time.
"""

import time

from repro.blob import MemoryBlob
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.core.rational import Rational
from repro.engine import Recorder
from repro.engine.vod import SessionRequest, VodServer
from repro.media import frames
from repro.media.objects import video_object
from repro.obs import Observability
from repro.obs.telemetry import Telemetry

#: Bandwidth sized for roughly two of the six sessions, so the serve
#: overloads, underruns accrue and the burn-rate alerts exercise their
#: full lifecycle while the scraper is attached.
BANDWIDTH = 21_000
CLIENTS = 6
ROUNDS = 5


def build_movie():
    video = video_object(frames.scene(48, 36, 20, "orbit"), "feature")
    return Recorder(MemoryBlob()).record(
        [video], encoders={"feature": JpegLikeCodec(quality=40).encode},
    )


def serve_once(movie, with_telemetry: bool):
    telemetry = Telemetry() if with_telemetry else None
    server = VodServer(BANDWIDTH, obs=Observability(),
                       telemetry=telemetry)
    server.publish("feature", movie)
    requests = [
        SessionRequest(client=f"client-{i}", title="feature",
                       arrival_time=Rational(i, 8))
        for i in range(CLIENTS)
    ]
    start = time.perf_counter()
    server.serve(requests, enforce_admission=False)
    return time.perf_counter() - start, telemetry


def test_telemetry_scrape_overhead(report):
    movie = build_movie()
    # one unmeasured warm-up of each shape, then alternate rounds so
    # machine drift hits both sides equally; best-of wins
    serve_once(movie, False)
    _, telemetry = serve_once(movie, True)
    bare = scraped = float("inf")
    for _ in range(ROUNDS):
        bare = min(bare, serve_once(movie, False)[0])
        elapsed, telemetry = serve_once(movie, True)
        scraped = min(scraped, elapsed)
    overhead = scraped / bare
    states = {row["state"] for row in telemetry.store.alert_rows()}

    report.kv(
        "telemetry",
        [
            ("bare serve (best of 5)", f"{bare * 1000:.2f} ms"),
            ("scrape-on serve (best of 5)", f"{scraped * 1000:.2f} ms"),
            ("overhead ratio", f"{overhead:.2f}x"),
            ("scrapes taken", telemetry.store.scrape_count),
            ("alert transitions", len(telemetry.store.alert_rows())),
            ("serves/s bare", f"{1.0 / bare:.2f}"),
            ("serves/s scraped", f"{1.0 / scraped:.2f}"),
        ],
        title="TELEMETRY — scrape overhead, overloaded 6-session serve",
    )
    report.metric("telemetry", "serves_per_second_bare", 1.0 / bare)
    report.metric("telemetry", "serves_per_second_scraped", 1.0 / scraped)
    report.metric("telemetry", "overhead_ratio", overhead)
    report.metric("telemetry", "scrapes", telemetry.store.scrape_count)
    report.metric("telemetry", "alert_transitions",
                  len(telemetry.store.alert_rows()))

    assert overhead < 2.0, (
        f"scrape-on serve took {overhead:.2f}x the bare serve"
    )
    # the workload must actually exercise the pipeline being measured
    assert telemetry.store.scrape_count > 5
    assert "firing" in states and "resolved" in states


def test_telemetry_dump_is_deterministic():
    movie = build_movie()
    _, first = serve_once(movie, with_telemetry=True)
    _, second = serve_once(movie, with_telemetry=True)
    assert first.store.dump() == second.store.dump()
    assert first.store.alert_rows() == second.store.alert_rows()
