"""E12 — §1.1's motivating application: video-on-demand service.

Sweeps concurrent client count against a fixed server bandwidth, with
and without admission control. The crossover — clean service up to the
admission capacity, collapse beyond it without control — is the behaviour
that makes the data model's rate descriptors ("information that helps
allocate resources for playback", §4.1) operationally necessary.
"""

import pytest

from repro.blob.blob import MemoryBlob
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.engine.recorder import Recorder
from repro.engine.vod import VodServer
from repro.media import frames
from repro.media.objects import video_object


@pytest.fixture(scope="module")
def movie():
    video = video_object(frames.scene(64, 48, 25, "orbit"), "feature")
    return Recorder(MemoryBlob()).record(
        [video], encoders={"feature": JpegLikeCodec(quality=40).encode},
    )


def test_vod_capacity_sweep(report, benchmark, movie):
    server = VodServer(bandwidth=400_000, prefetch_depth=8)
    server.publish("feature", movie)
    capacity = server.capacity("feature")
    assert capacity >= 2

    rows = []
    sweep = sorted({1, capacity // 2 or 1, capacity, capacity * 2,
                    capacity * 4})
    for clients in sweep:
        requests = [(f"c{i}", "feature") for i in range(clients)]
        uncontrolled = server.serve(requests, enforce_admission=False)
        controlled = server.serve(requests, enforce_admission=True)
        rows.append((
            clients,
            f"{uncontrolled.underrun_sessions()}/{clients}",
            f"{controlled.admitted_count} served, "
            f"{len(controlled.rejected)} rejected",
            controlled.underrun_sessions(),
        ))
    report.table(
        "vod",
        ("concurrent clients", "underruns w/o admission",
         "with admission control", "underruns w/ admission"),
        rows,
        title=f"§1.1 — VoD service at 400 KB/s "
              f"(admission capacity = {capacity})",
    )

    # Shape claims: beyond capacity, uncontrolled service degrades while
    # admission keeps every served session clean.
    over = [(f"c{i}", "feature") for i in range(capacity * 4)]
    uncontrolled = server.serve(over, enforce_admission=False)
    controlled = server.serve(over, enforce_admission=True)
    assert uncontrolled.underrun_sessions() > 0
    assert controlled.underrun_sessions() == 0
    assert controlled.admitted_count == capacity

    benchmark(lambda: server.serve(
        [(f"c{i}", "feature") for i in range(capacity)],
    ))
