"""OBS — per-subsystem counters for the Figure-5 pipeline workload.

Runs the full E5 stack (capture -> record -> derive -> compose -> play)
with an observability sink attached end to end, and renders the
collected per-subsystem counters as a table. Deterministic: re-running
the benchmark reproduces the same counts byte for byte.
"""

from test_bench_figure5_pipeline import build_stack

from repro.bench.reporting import metric_snapshot_rows
from repro.blob import BlobStore
from repro.engine import CostModel, Player
from repro.obs import Observability


def run_instrumented_pipeline():
    obs = Observability()
    blob, interpretation, editor, final, movie = build_stack()
    interpretation.instrument(obs)
    final.instrument(obs)

    # Touch every instrumented layer: archive the recorded tape into a
    # paged blob store, materialize both sequences, expand the edited
    # picture, then play the composition.
    store = BlobStore(obs=obs)
    store.create("tape1-archive").append(blob.read_all())
    for name in interpretation.names():
        interpretation.materialize(name)
    final.expand()
    player = Player(CostModel(bandwidth=40_000_000), prefetch_depth=4,
                    obs=obs)
    play = player.play(movie)
    return obs, play


def test_obs_pipeline_counters(report, benchmark):
    obs, play = benchmark.pedantic(run_instrumented_pipeline,
                                   iterations=1, rounds=1)
    report.table(
        "obs-pipeline",
        ("metric", "type", "labels", "value"),
        metric_snapshot_rows(obs.metrics.snapshot()),
        title="OBS — per-subsystem counters, Figure-5 pipeline workload",
    )

    snapshot = obs.metrics.snapshot()
    assert "core.interpretation.materializations" in snapshot
    assert "core.derivation.expansions" in snapshot
    assert "engine.play.runs" in snapshot
    assert play.metrics is not None
    assert play.underruns == 0


def test_obs_pipeline_is_deterministic():
    first, _ = run_instrumented_pipeline()
    second, _ = run_instrumented_pipeline()
    assert first.snapshot() == second.snapshot()
