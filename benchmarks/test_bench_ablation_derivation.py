"""E8 — ablation: derived objects vs copy-and-materialize (§4.2).

The paper's claims, measured head to head:

* "to delete a video subsequence one could copy and reassemble the frame
  data, but it would be much more efficient to simply create a
  derivation representing the edit" — edit-creation time and stored
  bytes, derivation vs copy.
* "if expansion can be done in real time then the derived object is all
  that needs be stored" — the resource model's decision on this machine.
"""

import pytest

from repro.bench.reporting import format_bytes
from repro.core import stream_ops
from repro.edit import MediaEditor
from repro.engine.resources import ResourceModel
from repro.media import frames
from repro.media.objects import video_object


@pytest.fixture(scope="module")
def footage():
    return video_object(frames.scene(160, 120, 100, "orbit"), "footage")


def copy_and_reassemble(video, in_tick, out_tick):
    """The eager alternative: materialize the selected frames now."""
    stream = video.stream()
    selected = stream_ops.select_range(stream, in_tick, out_tick)
    # Deep-copy the payloads, as a copying editor would.
    copied = stream_ops.map_elements(
        selected, lambda e: type(e)(payload=e.payload.copy(), size=e.size),
    )
    return copied


def test_edit_creation_cost(report, benchmark, footage):
    editor = MediaEditor()

    def derive():
        return editor.cut(footage, 10, 90)

    derived = benchmark(derive)
    assert derived.is_derived


def test_copy_creation_cost(benchmark, footage):
    copied = benchmark(lambda: copy_and_reassemble(footage, 10, 90))
    assert len(copied) == 80


def test_derivation_vs_copy_table(report, benchmark, footage):
    import time

    editor = MediaEditor()
    benchmark(lambda: MediaEditor().cut(footage, 10, 90))
    begin = time.perf_counter()
    derived = editor.cut(footage, 10, 90, name="cut-derived")
    derive_seconds = time.perf_counter() - begin

    begin = time.perf_counter()
    copied = copy_and_reassemble(footage, 10, 90)
    copy_seconds = time.perf_counter() - begin

    derived_bytes = derived.derivation_object.storage_size()
    copied_bytes = copied.total_size()

    rows = [
        ("create edit", f"{derive_seconds * 1e6:.0f} us",
         f"{copy_seconds * 1e6:.0f} us",
         f"{copy_seconds / max(derive_seconds, 1e-9):.0f}x"),
        ("stored bytes", format_bytes(derived_bytes),
         format_bytes(copied_bytes),
         f"{copied_bytes / derived_bytes:,.0f}x"),
    ]
    report.table(
        "ablation-derivation",
        ("metric", "derivation object", "copy-and-reassemble", "advantage"),
        rows,
        title="§4.2 — edit as derivation vs copying frame data",
    )
    assert derived_bytes * 100 < copied_bytes


def test_chain_reuse(report, benchmark, footage):
    """'Sequences of derivations can be changed and reused': re-cutting
    only replaces one tiny derivation object."""
    editor = MediaEditor()
    first = editor.cut(footage, 10, 90, name="v-cut-a")
    revised = editor.cut(footage, 20, 80, name="v-cut-b")
    benchmark(lambda: first.derivation_object.storage_size()
              + revised.derivation_object.storage_size())
    total = (first.derivation_object.storage_size()
             + revised.derivation_object.storage_size())
    report.add(
        "ablation-reuse",
        "[ablation-reuse] two alternative edits of the same footage "
        f"cost {total} bytes total; the footage "
        f"({format_bytes(footage.stream().total_size())}) is never copied",
    )
    assert total < 200


def test_store_or_expand_decision(report, benchmark, footage):
    """The §4.2 rule applied by the resource model on this machine."""
    editor = MediaEditor()
    cheap = editor.cut(footage, 0, 100, name="cheap-cut")
    expensive = editor.transition(
        footage, video_object(frames.scene(160, 120, 100, "cut"), "b"),
        90, kind="iris", name="big-iris",
    )
    model = ResourceModel(speed_factor=1.0)
    benchmark.pedantic(lambda: model.assess_expansion(cheap),
                       iterations=1, rounds=1)
    rows = []
    for derived in (cheap, expensive):
        decision = model.assess_expansion(derived)
        rows.append((
            derived.name,
            f"{decision.expansion_seconds * 1000:.1f} ms",
            f"{decision.duration_seconds * 1000:.0f} ms",
            f"{decision.margin:.1f}x",
            decision.recommendation,
        ))
    report.table(
        "ablation-store-or-expand",
        ("derived object", "expansion", "presentation", "margin",
         "decision"),
        rows,
        title="§4.2 — store the derivation, or materialize?",
    )
