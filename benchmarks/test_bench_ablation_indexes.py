"""E9 — ablation: multi-index lookup vs linear scan; layout comparison.

"Existing storage systems for time-based media use multiple index
structures, allowing rapid lookup of the element occurring at a specific
time" (§4.1, citing QuickTime's seven indexes). The ablation compares a
MediaIndex (run-length stts + chunked placement) against a naive linear
scan of the placement table, across stream sizes — and re-measures the
interleaved-vs-sequential layout trade-off at scale.
"""

import numpy as np
import pytest

from repro.blob import MemoryBlob
from repro.storage.indexes import (
    ChunkOffsetTable,
    MediaIndex,
    SampleSizeTable,
    SampleToChunkTable,
    TimeToSampleTable,
)
from repro.storage.layout import (
    TrackSpec,
    playback_schedule,
    read_cost_model,
    write_interleaved,
    write_sequential,
)
from repro.core.time_system import CD_AUDIO_TIME, PAL_TIME


def build_index(count: int, rng) -> tuple[MediaIndex, list[tuple]]:
    """A variable-size constant-frequency stream + its raw table."""
    sizes = rng.integers(500, 1500, count).tolist()
    samples_per_chunk = 8
    chunk_count = (count + samples_per_chunk - 1) // samples_per_chunk
    offsets = []
    position = 0
    for chunk in range(chunk_count):
        offsets.append(position)
        begin = chunk * samples_per_chunk
        position += sum(sizes[begin:begin + samples_per_chunk])
    index = MediaIndex(
        time_to_sample=TimeToSampleTable([(count, 1)]),
        sample_sizes=SampleSizeTable.from_sizes(sizes),
        sample_to_chunk=SampleToChunkTable.uniform(samples_per_chunk,
                                                   chunk_count),
        chunk_offsets=ChunkOffsetTable(offsets),
    )
    # The naive flat table: (start, duration, size, offset).
    table = []
    position = 0
    for i, size in enumerate(sizes):
        table.append((i, 1, size, position))
        position += size
    return index, table


def linear_scan(table, tick):
    for start, duration, size, offset in table:
        if start <= tick < start + duration:
            return offset, size
    return None


@pytest.mark.parametrize("count", [1_000, 10_000, 50_000])
def test_indexed_lookup(benchmark, count):
    rng = np.random.default_rng(count)
    index, _ = build_index(count, rng)
    ticks = rng.integers(0, count, 200).tolist()

    def indexed():
        return [index.placement_at_time(t) for t in ticks]

    results = benchmark(indexed)
    assert all(r is not None for r in results)


@pytest.mark.parametrize("count", [1_000, 10_000])
def test_linear_scan_lookup(benchmark, count):
    rng = np.random.default_rng(count)
    _, table = build_index(count, rng)
    ticks = rng.integers(0, count, 200).tolist()

    def scan():
        return [linear_scan(table, t) for t in ticks]

    results = benchmark(scan)
    assert all(r is not None for r in results)


def test_lookup_ablation_table(report, benchmark):
    """Time-of-lookup series by stream length (the figure-like sweep)."""
    import time

    warm_index, _ = build_index(1_000, np.random.default_rng(0))
    benchmark(lambda: warm_index.placement_at_time(500))

    rows = []
    for count in (1_000, 10_000, 50_000):
        rng = np.random.default_rng(count)
        index, table = build_index(count, rng)
        ticks = rng.integers(0, count, 100).tolist()

        begin = time.perf_counter()
        for t in ticks:
            index.placement_at_time(t)
        indexed = (time.perf_counter() - begin) / len(ticks)

        begin = time.perf_counter()
        for t in ticks:
            linear_scan(table, t)
        scanned = (time.perf_counter() - begin) / len(ticks)

        rows.append((
            f"{count:,}",
            f"{indexed * 1e6:.1f} us",
            f"{scanned * 1e6:.1f} us",
            f"{scanned / indexed:.0f}x",
        ))
    report.table(
        "ablation-indexes",
        ("elements", "MediaIndex lookup", "linear scan", "speedup"),
        rows,
        title="§4.1 — element-at-time lookup: indexes vs scanning",
    )
    # Indexes must win by a growing margin.
    speedups = [float(r[3].rstrip("x")) for r in rows]
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 10


def test_layout_ablation_table(report, benchmark):
    """Interleaved vs sequential read cost for synchronized playback,
    across stream lengths."""
    rows = []
    rng = np.random.default_rng(7)
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    for frame_count in (50, 250, 1000):
        video = TrackSpec("video", PAL_TIME)
        audio = TrackSpec("audio", CD_AUDIO_TIME)
        for i in range(frame_count):
            video.add(b"\x00" * int(rng.integers(800, 1600)), i, 1)
            audio.add(b"\x00" * 441, i * 1764, 1764)
        schedule = playback_schedule([video, audio])
        interleaved = read_cost_model(
            write_interleaved(MemoryBlob(), [video, audio]), schedule,
        )
        sequential = read_cost_model(
            write_sequential(MemoryBlob(), [video, audio]), schedule,
        )
        rows.append((
            frame_count,
            f"{interleaved:,}",
            f"{sequential:,}",
            f"{sequential / interleaved:.2f}x",
        ))
    report.table(
        "ablation-layout",
        ("frames", "interleaved cost", "sequential cost", "penalty"),
        rows,
        title="§2.2 — interleaving vs per-stream layout under "
              "synchronized playback",
    )
    for row in rows:
        assert float(row[3].rstrip("x")) > 1.0
