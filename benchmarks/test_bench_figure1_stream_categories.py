"""E1 — Figure 1: the eight timed-stream categories.

Regenerates the figure as a table: one synthetic stream per row, with the
classifier's verdicts. The benchmark measures classification over a large
stream (the operation a database runs when cataloging media).
"""

import pytest

from repro.bench.workloads import figure1_streams
from repro.core.elements import MediaElement
from repro.core.media_types import media_type_registry
from repro.core.streams import TimedStream


ROWS = ["homogeneous", "heterogeneous", "continuous", "non-continuous",
        "event-based", "constant frequency", "constant data rate", "uniform"]


def test_figure1_table(report, benchmark):
    streams = figure1_streams()

    def classify_all():
        return {name: stream.categories() for name, stream in streams.items()}

    benchmark(classify_all)

    rows = []
    for name in ROWS:
        stream = streams[name]
        rows.append((
            name,
            len(stream),
            "yes" if stream.is_continuous() else "no",
            "yes" if stream.has_gaps() else "no",
            "yes" if stream.has_overlaps() else "no",
            "yes" if stream.is_event_based() else "no",
            stream.category_label(),
        ))
    report.table(
        "figure1",
        ("figure row", "elements", "continuous", "gaps", "overlaps",
         "events", "classified as"),
        rows,
        title="Figure 1 — categories of timed streams",
    )

    # The figure's row property must hold for each stream.
    assert streams["event-based"].is_event_based()
    assert streams["non-continuous"].has_gaps()
    assert streams["non-continuous"].has_overlaps()
    assert streams["uniform"].is_uniform()
    assert streams["heterogeneous"].is_heterogeneous()


def test_classification_scales_linearly(benchmark):
    """Classifying a 100k-element stream stays cheap (single pass)."""
    video = media_type_registry.get("pal-video")
    stream = TimedStream.from_elements(
        video, [MediaElement(size=1000)] * 100_000
    )
    categories = benchmark(stream.categories)
    assert len(categories) >= 3
