"""E5 — Figure 5: successive interpretation, derivation and composition.

The full stack as one benchmark: capture raw material -> record into a
BLOB (interpretation built during the write) -> derive the edited picture
-> compose the multimedia object -> simulate playback. Regenerates the
figure as a layer table with the object counts and byte volumes at each
level.
"""

import pytest

from repro.bench.reporting import format_bytes
from repro.blob import MemoryBlob
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.codecs.pcm import PcmCodec
from repro.core.composition import MultimediaObject
from repro.core.rational import Rational
from repro.edit import MediaEditor
from repro.engine import CostModel, Player, Recorder
from repro.media import frames, signals
from repro.media.objects import audio_object, video_object


def build_stack(width=96, height=72, frame_count=40):
    shot1 = video_object(frames.scene(width, height, frame_count, "orbit"),
                         "shot1")
    shot2 = video_object(frames.scene(width, height, frame_count, "cut"),
                         "shot2")
    # Picture length: (frame_count - 4) + 8 + (frame_count - 4) frames.
    seconds = 2 * frame_count / 25
    music = audio_object(signals.sine(330, seconds, 8000), "music",
                         sample_rate=8000, block_samples=320)

    blob = MemoryBlob()
    interpretation = Recorder(blob).record(
        [shot1, shot2],
        encoders={
            "shot1": JpegLikeCodec(quality=40).encode,
            "shot2": JpegLikeCodec(quality=40).encode,
        },
        interpretation_name="tape1",
    )

    editor = MediaEditor()
    cut1 = editor.cut(shot1, 0, frame_count - 4, name="cut1")
    fade = editor.transition(shot1, shot2, 8, a_start=frame_count - 8,
                             b_start=0, name="fade")
    cut2 = editor.cut(shot2, 4, frame_count, name="cut2")
    final = editor.concat(cut1, fade, cut2, name="final")

    movie = MultimediaObject("movie")
    movie.add_temporal(final, at=0, label="picture")
    movie.add_temporal(music, at=0, label="music")
    return blob, interpretation, editor, final, movie


def test_figure5_layers(report, benchmark):
    blob, interpretation, editor, final, movie = benchmark.pedantic(
        build_stack, iterations=1, rounds=1,
    )
    expanded = final.expand()

    rows = [
        ("BLOB", "uninterpreted bytes", "1 BLOB",
         format_bytes(len(blob))),
        ("interpretation", "placement tables", "2 sequences",
         f"{sum(len(interpretation.sequence(n)) for n in interpretation.names())} rows"),
        ("media objects (non-derived)", "shot1, shot2, music", "3 objects",
         "reached via interpretation / capture"),
        ("media objects (derived)", "cut1, fade, cut2, final", "4 objects",
         format_bytes(editor.total_derivation_bytes(final))),
        ("multimedia object", "temporal composition", "2 components",
         f"duration {movie.duration().to_timestamp()}"),
        ("(expanded picture)", "materialized on demand", "1 object",
         format_bytes(expanded.stream().total_size())),
    ]
    report.table(
        "figure5",
        ("layer", "contents", "count", "volume"),
        rows,
        title="Figure 5 — successive interpretation, derivation, composition",
    )

    assert interpretation.coverage() == 1.0
    assert final.is_derived
    assert movie.duration() == Rational(80, 25)


def test_figure5_playback(report, benchmark):
    _, interpretation, _, _, movie = build_stack()
    player = Player(CostModel(bandwidth=40_000_000), prefetch_depth=4)
    play = benchmark(lambda: player.play_multimedia(movie))
    report.add(
        "figure5-playback",
        f"[figure5-playback] composed playback: {play.summary()}",
    )
    assert play.underruns == 0


def test_figure5_capture_throughput(benchmark):
    """Throughput of the capture+record step alone (frames/second of
    encoding into the interpreted BLOB)."""
    video = video_object(frames.scene(96, 72, 10, "orbit"), "v")
    codec = JpegLikeCodec(quality=40)

    def record_once():
        return Recorder(MemoryBlob()).record(
            [video], encoders={"v": codec.encode},
        )

    interpretation = benchmark(record_once)
    assert len(interpretation.sequence("v")) == 10
