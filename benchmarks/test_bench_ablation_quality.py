"""E10 — ablation: the quality-factor ladder (§2.2 "Quality Factors").

"Video quality (and the same applies for audio quality) should be
specified via descriptive quality factors" — the ladder maps each
descriptive name to hidden codec parameters. The ablation measures what
each name actually buys: encoded bits per pixel and PSNR must both be
monotone in the ladder, and the paper's "about 0.5 bits per pixel (this
will give VHS quality)" operating point should sit in the right region.

A second table measures CD-I-style sector padding: the §2.2 "padding"
overhead as a function of sector size.
"""

import pytest

from repro.blob import MemoryBlob
from repro.codecs.jpeg_like import JpegLikeCodec, psnr
from repro.core.quality import VIDEO_QUALITY
from repro.media import frames
from repro.storage.layout import CD_SECTOR_SIZE, TrackSpec, write_interleaved
from repro.core.time_system import PAL_TIME


def test_quality_ladder_ablation(report, benchmark):
    frame = frames.scene(320, 240, 2, "orbit")[1]
    pixels = frame.shape[0] * frame.shape[1]

    rows = []
    measurements = []
    for factor in VIDEO_QUALITY.ordered():
        codec = JpegLikeCodec(quality=factor.codec_params["jpeg_quality"],
                              subsampling="4:2:2")
        encoded = codec.encode(frame)
        decoded = codec.decode(encoded)
        bpp = len(encoded) * 8 / pixels
        fidelity = psnr(frame, decoded)
        measurements.append((factor, bpp, fidelity))
        rows.append((
            factor.name,
            factor.codec_params["jpeg_quality"],
            f"{factor.nominal_bits_per_unit}",
            f"{bpp:.2f}",
            f"{fidelity:.1f} dB",
        ))
    report.table(
        "ablation-quality",
        ("quality factor", "hidden jpeg_quality", "nominal bpp",
         "measured bpp", "PSNR"),
        rows,
        title="§2.2 — descriptive quality factors vs what the codec delivers",
    )

    # Monotonicity up the ladder: more bits, better fidelity.
    for (_, bpp_low, psnr_low), (_, bpp_high, psnr_high) in zip(
            measurements, measurements[1:]):
        assert bpp_high > bpp_low
        assert psnr_high > psnr_low

    vhs = next(m for m in measurements if m[0].name == "VHS quality")
    # The VHS operating point lands in the sub-2-bpp compressed regime.
    assert vhs[1] < 2.0

    codec = JpegLikeCodec(quality=35, subsampling="4:2:2")
    benchmark(lambda: codec.encode(frame))


def test_sector_padding_overhead(report, benchmark):
    """§2.2: 'storage units may be padded with unused data to match
    storage transfer rates to media data rates. This is commonly used in
    CD-I'. Padding buys aligned reads; the table shows its price."""
    rows = []
    rng_sizes = [700 + (i * 137) % 900 for i in range(100)]

    def build(sector_size):
        video = TrackSpec("video", PAL_TIME)
        for i, size in enumerate(rng_sizes):
            video.add(b"\x00" * size, i, 1)
        blob = MemoryBlob()
        write_interleaved(blob, [video], sector_size=sector_size)
        return blob

    payload = sum(rng_sizes)
    for sector_size in (None, 512, CD_SECTOR_SIZE):
        blob = build(sector_size)
        overhead = len(blob) - payload
        rows.append((
            "none" if sector_size is None else sector_size,
            f"{len(blob):,}",
            f"{overhead:,}",
            f"{overhead / len(blob):.1%}",
        ))
    report.table(
        "ablation-padding",
        ("sector size", "BLOB bytes", "padding", "overhead"),
        rows,
        title="§2.2 — CD-I-style sector padding overhead",
    )
    assert int(str(rows[0][2]).replace(",", "")) == 0
    assert int(str(rows[2][2]).replace(",", "")) > 0

    benchmark(lambda: build(CD_SECTOR_SIZE))
