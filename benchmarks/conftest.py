"""Benchmark harness plumbing.

Benchmarks regenerate the paper's tables and figures. Each benchmark
registers its rendered table with the ``report`` fixture; the collected
tables are printed in the terminal summary (so they survive pytest's
output capture) and written to ``benchmarks/results/``. Numeric
readings registered with :meth:`BenchReport.metric` are additionally
written machine-readably as ``BENCH_<experiment>.json`` next to the
text tables, which is what ``tools.check --bench-compare`` diffs
against a saved baseline.
"""

from __future__ import annotations

import json
import os

import pytest

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
_collected: list[tuple[str, str]] = []
_collected_json: dict[str, dict[str, float]] = {}


class BenchReport:
    """Collects rendered tables and numeric metrics per experiment id."""

    def add(self, experiment_id: str, text: str) -> None:
        _collected.append((experiment_id, text))

    def table(self, experiment_id: str, headers, rows, title: str = "") -> None:
        from repro.bench.reporting import table_text

        caption = f"[{experiment_id}] {title}".rstrip()
        self.add(experiment_id, table_text(headers, rows, title=caption))

    def kv(self, experiment_id: str, pairs, title: str = "") -> None:
        """A two-column metric/value table from (name, value) pairs."""
        self.table(experiment_id, ("metric", "value"),
                   [(name, str(value)) for name, value in pairs],
                   title=title)

    def metric(self, experiment_id: str, name: str, value) -> None:
        """Register one machine-readable reading for the experiment.

        Lands in ``results/BENCH_<experiment_id>.json``; name metrics
        containing ``per_second``/``throughput`` gate the
        ``--bench-compare`` regression check.
        """
        _collected_json.setdefault(experiment_id, {})[name] = float(value)


@pytest.fixture
def report() -> BenchReport:
    return BenchReport()


def pytest_collection_modifyitems(config, items):
    # Everything under benchmarks/ is a benchmark: mark it so tier-1
    # runs can exclude the sweeps with ``-m "not bench"``.
    for item in items:
        item.add_marker(pytest.mark.bench)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _collected and not _collected_json:
        return
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    for experiment_id in sorted(_collected_json):
        path = os.path.join(_RESULTS_DIR, f"BENCH_{experiment_id}.json")
        with open(path, "w") as handle:
            json.dump(
                {"experiment": experiment_id,
                 "metrics": _collected_json[experiment_id]},
                handle, sort_keys=True, indent=2,
            )
            handle.write("\n")
    if not _collected:
        return
    terminalreporter.section("paper tables and figures (reproduced)")
    written: set[str] = set()
    for experiment_id, text in _collected:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
        path = os.path.join(_RESULTS_DIR, f"{experiment_id}.txt")
        # Fresh file per experiment per run; append within a run so a
        # partial benchmark selection doesn't clobber other results.
        mode = "a" if path in written else "w"
        written.add(path)
        with open(path, mode) as handle:
            handle.write(text + "\n\n")
