"""E2 — Figure 2 / §4.1: interpretation of a BLOB.

Two parts:

1. **Paper arithmetic, symbolically** — the exact 640x480 / 10-minute
   numbers: ~22 MB/s raw, 12 bpp after YUV, ~0.5 MB/s after JPEG,
   172 KiB/s audio, 1764 sample pairs per frame.
2. **The pipeline, actually run** — at the paper's own 640x480 geometry the same code path
   (RGB -> YUV 4:2:2 -> JPEG at the "VHS quality" factor, interleaved
   with stereo PCM) is executed and measured; the benchmark times the
   capture+record step.
"""

import pytest

from repro.bench.reporting import format_rate
from repro.bench.workloads import figure2_capture, figure2_paper_arithmetic


def test_figure2_paper_arithmetic(report, benchmark):
    a = benchmark(figure2_paper_arithmetic)
    rows = [
        ("video, raw RGB 24 bpp", "~22 MByte/sec",
         format_rate(a.raw_video_rate)),
        ("video, YUV 8:2:2 (12 bpp)", "(half of raw)",
         format_rate(a.yuv_video_rate)),
        ("video, JPEG ~0.5 bpp", "roughly 0.5 MByte/sec",
         format_rate(a.compressed_video_rate)),
        ("audio, 44.1 kHz 16-bit stereo", "172 kbyte/sec",
         format_rate(a.audio_data_rate)),
        ("audio sample pairs per frame", "1764",
         str(a.samples_per_frame)),
        ("10-minute BLOB size", "~400 MB",
         f"{a.total_bytes / 2**20:.0f} MiB"),
    ]
    report.table(
        "figure2-arithmetic",
        ("quantity", "paper", "reproduced"),
        rows,
        title="Figure 2 / §4.1 — the paper's data-rate arithmetic",
    )
    assert a.raw_video_rate / 2**20 == pytest.approx(21.97, abs=0.01)
    assert a.audio_data_rate == 176_400
    assert a.samples_per_frame == 1764


def test_figure2_pipeline_measured(report, benchmark):
    capture = benchmark.pedantic(
        figure2_capture,
        kwargs=dict(width=640, height=480, seconds=1.0, fps=25,
                    quality="VHS quality"),
        iterations=1, rounds=1,
    )
    interpretation = capture.interpretation
    interpretation.validate()

    video = interpretation.sequence("video1")
    audio = interpretation.sequence("audio1")
    paper = figure2_paper_arithmetic()
    scale = (640 * 480) / (paper.width * paper.height)

    # A textured capture approximates natural footage's entropy better
    # than the smooth orbit scene; report both operating points.
    textured = figure2_capture(width=640, height=480, seconds=0.2,
                               quality="VHS quality", content="texture")

    rows = [
        ("video bits/pixel (smooth)", "~0.5 (VHS quality)",
         f"{capture.measured_video_bpp:.2f}"),
        ("video bits/pixel (textured)", "~0.5 (VHS quality)",
         f"{textured.measured_video_bpp:.2f}"),
        ("video data rate", f"~{paper.compressed_video_rate * scale / 1024:.0f} KiB/s (scaled)",
         format_rate(capture.measured_video_rate)),
        ("audio data rate", "172 KiB/s",
         format_rate(capture.measured_audio_rate)),
        ("video table", "video1(elementNumber, elementSize, blobPlacement)",
         f"video1{video.table_columns()}"),
        ("audio table", "audio1(elementNumber, blobPlacement)",
         f"audio1{audio.table_columns()}"),
        ("audio follows its frame", "yes (interleaved)",
         "yes" if video.entries[0].blob_offset < audio.entries[0].blob_offset
         < video.entries[1].blob_offset else "NO"),
        ("BLOB coverage", "100%", f"{interpretation.coverage():.0%}"),
    ]
    report.table(
        "figure2-measured",
        ("quantity", "paper", "measured (640x480, 1 s)"),
        rows,
        title="Figure 2 — the pipeline actually run",
    )

    # Shape assertions: compression lands within 4x of the paper's 0.5
    # bpp target on synthetic content, audio is exact PCM arithmetic.
    assert 0.1 < capture.measured_video_bpp < 2.0
    assert capture.measured_audio_rate == pytest.approx(176_400, rel=0.02)
    assert video.table_columns() == ("elementNumber", "elementSize",
                                     "blobPlacement")
    assert audio.table_columns() == ("elementNumber", "blobPlacement")


def test_figure2_element_at_time_lookup(report, benchmark):
    """"Rapid lookup of the element occurring at a specific time" over
    the captured interpretation."""
    capture = figure2_capture(width=160, height=120, seconds=1.0)
    video = capture.interpretation.sequence("video1")

    def lookup_sweep():
        hits = 0
        for tick in range(0, 25):
            hits += len(video.entries_at_tick(tick))
        return hits

    hits = benchmark(lookup_sweep)
    assert hits == 25
