"""E6 — §1.2's queries: sound track, duration, visual fidelity.

The paper's motivation for structure over BLOBs is that these queries
become *possible*. The benchmark regenerates the three query results and
measures their costs; the fidelity query's byte-read series demonstrates
the "bandwidth can be saved ... by ignoring parts of the storage unit"
claim quantitatively (§2.2 scalability).
"""

import pytest

from repro.bench.reporting import format_bytes
from repro.bench.workloads import multilingual_movie
from repro.codecs.scalable import ScalableVideoCodec
from repro.core.elements import MediaElement
from repro.core.media_types import media_type_registry
from repro.core.media_object import StreamMediaObject
from repro.core.rational import Rational
from repro.core.streams import TimedStream
from repro.media import frames
from repro.query import frames_at_fidelity, select_duration, select_track


@pytest.fixture(scope="module")
def movie_db():
    return multilingual_movie(seconds=2.0, width=160, height=120)


@pytest.fixture(scope="module")
def scalable_video():
    codec = ScalableVideoCodec(levels=3, quality=60)
    shot = frames.scene(160, 120, 25, "pan")
    video_type = media_type_registry.get("pal-video")
    elements = []
    for frame in shot:
        data = codec.encode(frame)
        elements.append(MediaElement(payload=data, size=len(data)))
    stream = TimedStream.from_elements(video_type, elements)
    descriptor = video_type.make_media_descriptor(
        frame_rate=25, frame_width=160, frame_height=120, frame_depth=24,
        color_model="RGB", encoding="scalable", duration=Rational(1),
    )
    return StreamMediaObject(video_type, descriptor, stream, "proxy"), codec


def test_select_track_query(report, benchmark, movie_db):
    db, movie = movie_db
    track = benchmark(lambda: select_track(db, "feature", "fr"))
    assert track.name == "feature-audio-fr"
    report.add(
        "queries-track",
        "[queries-track] select a specific sound track: "
        f"language 'fr' -> {track.name} "
        f"(catalog of {len(db)} objects)",
    )


def test_select_duration_query(report, benchmark, movie_db):
    db, _ = movie_db
    video = db.get_object("feature-video")

    clip = benchmark(
        lambda: select_duration(video, Rational(1, 2), Rational(3, 2))
    )
    # 0.5 s and 1.5 s fall between 25 fps ticks; the selection expands
    # outward to whole elements: floor(12.5)=12 .. ceil(37.5)=38.
    assert clip.descriptor["duration"] == Rational(26, 25)
    report.add(
        "queries-duration",
        "[queries-duration] select a specific duration: [0.5s, 1.5s) -> "
        f"derived object of {clip.derivation_object.storage_size()} bytes "
        f"(source holds {format_bytes(video.stream().total_size())}); "
        "no frame data copied",
    )


def test_fidelity_query_series(report, benchmark, scalable_video):
    """The figure-like series: bytes read and resolution per fidelity
    level."""
    obj, codec = scalable_video

    def full_fidelity():
        return frames_at_fidelity(obj, 2, codec, frame_indices=range(25))

    benchmark(full_fidelity)

    rows = []
    previous_read = 0
    for level, label in ((0, "preview"), (1, "half"), (2, "full")):
        decoded, read, total = frames_at_fidelity(
            obj, level, codec, frame_indices=range(25),
        )
        rows.append((
            label,
            f"{decoded[0].shape[1]}x{decoded[0].shape[0]}",
            format_bytes(read),
            f"{read / total:.0%}",
        ))
        assert read > previous_read
        previous_read = read
    report.table(
        "queries-fidelity",
        ("fidelity level", "resolution", "bytes read (25 frames)",
         "fraction of full"),
        rows,
        title="§1.2 / §2.2 — retrieve frames at a specific visual fidelity",
    )

    # The scalability claim: the preview level reads a small fraction.
    _, read0, total = frames_at_fidelity(obj, 0, codec,
                                         frame_indices=range(25))
    assert read0 < total / 3
